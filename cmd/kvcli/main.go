// Command kvcli is an interactive (or scripted) shell over the emulated
// KVSSD's SNIA-style KV interface. It is useful for poking at device
// behaviour — resizes, GC, recovery — by hand.
//
// Usage:
//
//	kvcli [-capacity BYTES] [-index rhik|mlhash] [-shards N] [-prefixlen N] [< script]
//	kvcli walinfo <wal-root>
//	kvcli backup  <addr> <file>
//	kvcli restore <addr> <file>
//	kvcli cachestats <addr>
//
// cachestats queries a running kvserver's STATS op and prints one table
// covering every DRAM tier in front of flash: index-page cache hit
// ratio and TinyLFU admission rejects, hot-value cache hit ratio, and
// scan-prefetch effectiveness.
//
// walinfo inspects a write-ahead-log directory offline — segment list,
// per-segment sequence ranges, checkpoint horizon, and the recovery
// point — without opening a device or modifying the log. It is safe on
// the WAL of a crashed (or even running) server.
//
// backup streams a consistent online checkpoint from a running kvserver
// (writers keep committing) into a self-verifying file; restore replays
// such a file into a (typically fresh) server. See backup.go for the
// file format.
//
// Commands:
//
//	put <key> <value>      store a pair
//	get <key>              retrieve a value
//	del <key>              delete a key
//	exist <key>            membership check
//	batch <op> <args> ...  async batch, e.g. batch put a 1 get a del b
//	iter <prefix>          enumerate keys by prefix (needs -prefixlen)
//	fill <n> <valueBytes>  bulk-load n synthetic pairs
//	stats                  device/index counters
//	checkpoint             force a durability checkpoint
//	restart                simulate power loss + recovery
//	help                   this text
//	quit                   exit
//
// With -shards > 1 every command routes through the sharded front-end:
// single-key commands go to the owning shard, and batch fans its ops
// out across shards concurrently, joining results in submission order.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	rhik "repro"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	capacity := flag.Int64("capacity", 256<<20, "emulated capacity in bytes")
	indexName := flag.String("index", "rhik", "index scheme: rhik or mlhash")
	shards := flag.Int("shards", 1, "device shards, power of two (0 = GOMAXPROCS)")
	prefixLen := flag.Int("prefixlen", 0, "iterator-mode signature prefix length")
	flag.Parse()

	if flag.Arg(0) == "walinfo" {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: kvcli walinfo <wal-root>")
			os.Exit(2)
		}
		if err := walinfo(flag.Arg(1)); err != nil {
			fmt.Fprintf(os.Stderr, "kvcli: walinfo: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "cachestats" {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: kvcli cachestats <addr>")
			os.Exit(2)
		}
		if err := runCacheStats(flag.Arg(1)); err != nil {
			fmt.Fprintf(os.Stderr, "kvcli: cachestats: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if cmd := flag.Arg(0); cmd == "backup" || cmd == "restore" {
		if flag.NArg() != 3 {
			fmt.Fprintf(os.Stderr, "usage: kvcli %s <addr> <file>\n", cmd)
			os.Exit(2)
		}
		run := runBackup
		if cmd == "restore" {
			run = runRestore
		}
		if err := run(flag.Arg(1), flag.Arg(2)); err != nil {
			fmt.Fprintf(os.Stderr, "kvcli: %s: %v\n", cmd, err)
			os.Exit(1)
		}
		return
	}

	opts := rhik.Options{Capacity: *capacity, Shards: *shards, IteratorPrefixLen: *prefixLen}
	switch *indexName {
	case "rhik":
		opts.Index = rhik.RHIK
	case "mlhash":
		opts.Index = rhik.MultiLevel
	default:
		fmt.Fprintf(os.Stderr, "kvcli: unknown index %q\n", *indexName)
		os.Exit(2)
	}
	db, err := rhik.Open(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvcli: %v\n", err)
		os.Exit(1)
	}

	sc := bufio.NewScanner(os.Stdin)
	interactive := isTTY()
	if interactive {
		fmt.Printf("emulated %s KVSSD, %d MiB, %d shard(s). 'help' for commands.\n",
			*indexName, *capacity>>20, db.Shards())
	}
	for {
		if interactive {
			fmt.Print("kv> ")
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := execute(db, line); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
	if err := db.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "kvcli: close: %v\n", err)
	}
}

func execute(db *rhik.DB, line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "put":
		if len(args) != 2 {
			return fmt.Errorf("usage: put <key> <value>")
		}
		if err := db.Store([]byte(args[0]), []byte(args[1])); err != nil {
			return err
		}
		fmt.Println("ok")
	case "get":
		if len(args) != 1 {
			return fmt.Errorf("usage: get <key>")
		}
		v, err := db.Retrieve([]byte(args[0]))
		if err != nil {
			return err
		}
		fmt.Printf("%q\n", v)
	case "del":
		if len(args) != 1 {
			return fmt.Errorf("usage: del <key>")
		}
		if err := db.Delete([]byte(args[0])); err != nil {
			return err
		}
		fmt.Println("ok")
	case "exist":
		if len(args) != 1 {
			return fmt.Errorf("usage: exist <key>")
		}
		ok, err := db.Exist([]byte(args[0]))
		if err != nil {
			return err
		}
		fmt.Println(ok)
	case "batch":
		b, err := parseBatch(args)
		if err != nil {
			return err
		}
		res := db.Apply(b, 0)
		for i, e := range res.Errs {
			switch {
			case e != nil:
				fmt.Printf("[%d] error: %v\n", i, e)
			case res.Values[i] != nil:
				fmt.Printf("[%d] %q\n", i, res.Values[i])
			default:
				fmt.Printf("[%d] ok\n", i)
			}
		}
		fmt.Printf("(%d ops, %d failed, %v simulated)\n", b.Len(), res.Failed(), res.Elapsed)
	case "iter":
		if len(args) != 1 {
			return fmt.Errorf("usage: iter <prefix>")
		}
		entries, err := db.Iterate([]byte(args[0]))
		if err != nil {
			return err
		}
		for _, e := range entries {
			fmt.Printf("%s = %q\n", e.Key, e.Value)
		}
		fmt.Printf("(%d entries)\n", len(entries))
	case "fill":
		if len(args) != 2 {
			return fmt.Errorf("usage: fill <n> <valueBytes>")
		}
		n, err1 := strconv.Atoi(args[0])
		vb, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil || n < 0 || vb < 0 {
			return fmt.Errorf("usage: fill <n> <valueBytes>")
		}
		var b rhik.Batch
		for i := 0; i < n; i++ {
			b.Store(workload.KeyBytes(uint64(i)), workload.ValuePayload(uint64(i), vb))
		}
		res := db.Apply(&b, 0)
		fmt.Printf("stored %d pairs (%d failed) in %v simulated\n", n-res.Failed(), res.Failed(), res.Elapsed)
	case "stats":
		s := db.Stats()
		fmt.Printf("index=%s shards=%d records=%d dirEntries=%d resizes=%d halt=%v collisions=%d\n",
			s.IndexScheme, db.Shards(), s.IndexRecords, s.DirectoryEntries, s.Resizes, s.ResizeHaltTotal, s.CollisionAborts)
		fmt.Printf("ops: store=%d get=%d del=%d exist=%d  bytes: w=%d r=%d\n",
			s.Stores, s.Retrieves, s.Deletes, s.Exists, s.BytesWritten, s.BytesRead)
		fmt.Printf("flash: reads=%d programs=%d erases=%d gcRuns=%d ckpts=%d recoveries=%d\n",
			s.FlashReads, s.FlashPrograms, s.FlashErases, s.GCRuns, s.Checkpoints, s.Recoveries)
		fmt.Printf("cache: hits=%d misses=%d  latency: store p50=%v p99=%v get p50=%v p99=%v\n",
			s.CacheHits, s.CacheMisses, s.StoreP50, s.StoreP99, s.RetrieveP50, s.RetrieveP99)
		fmt.Printf("simulated elapsed: %v\n", db.Elapsed())
	case "checkpoint":
		if err := db.Checkpoint(); err != nil {
			return err
		}
		fmt.Println("ok")
	case "restart":
		if err := db.Restart(); err != nil {
			return err
		}
		fmt.Println("recovered")
	case "help":
		fmt.Println("put get del exist batch iter fill stats checkpoint restart quit")
		fmt.Println("batch syntax: batch put <k> <v> [get <k>] [del <k>] ... (fans out across shards)")
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

// parseBatch greedily parses "put <k> <v> get <k> del <k> ..." into an
// async batch; each sub-op has fixed arity so the grammar needs no
// separators.
func parseBatch(args []string) (*rhik.Batch, error) {
	usage := fmt.Errorf("usage: batch {put <k> <v> | get <k> | del <k>} ...")
	if len(args) == 0 {
		return nil, usage
	}
	var b rhik.Batch
	for i := 0; i < len(args); {
		switch args[i] {
		case "put":
			if i+2 >= len(args) {
				return nil, usage
			}
			b.Store([]byte(args[i+1]), []byte(args[i+2]))
			i += 3
		case "get":
			if i+1 >= len(args) {
				return nil, usage
			}
			b.Retrieve([]byte(args[i+1]))
			i += 2
		case "del":
			if i+1 >= len(args) {
				return nil, usage
			}
			b.Delete([]byte(args[i+1]))
			i += 2
		default:
			return nil, fmt.Errorf("batch: unknown sub-op %q (want put/get/del)", args[i])
		}
	}
	return &b, nil
}

// walinfo prints an offline report of a WAL root: the topology manifest,
// then per shard the segment list with sequence ranges and the recovery
// point (everything on disk is replayed; the horizon only gates
// compaction).
func walinfo(root string) error {
	m, err := wal.ReadManifest(root)
	if err != nil {
		return fmt.Errorf("%s: %w (is this a WAL root?)", root, err)
	}
	fmt.Printf("%s: rhik-wal v1, shards=%d sigbits=%d prefixlen=%d\n",
		root, m.Shards, m.SigBits, m.PrefixLen)
	var totalRecords, totalSegments int
	var torn int64
	for s := 0; s < m.Shards; s++ {
		dir := filepath.Join(root, fmt.Sprintf("shard-%04d", s))
		info, err := wal.Inspect(dir)
		if err != nil {
			return err
		}
		fmt.Printf("shard %d: %d segment(s), %d record(s), horizon=%d lastSeq=%d\n",
			s, len(info.Segments), info.Records, info.Horizon, info.LastSeq)
		for _, seg := range info.Segments {
			line := fmt.Sprintf("  %s  %8d B  %6d rec", seg.Name, seg.Size, seg.Records)
			if seg.Records > 0 {
				line += fmt.Sprintf("  seq [%d, %d]", seg.MinSeq, seg.MaxSeq)
			}
			if seg.Covered {
				line += "  (compactable)"
			}
			if seg.TornBytes > 0 {
				line += fmt.Sprintf("  TORN TAIL: %d B (recovery truncates)", seg.TornBytes)
			}
			fmt.Println(line)
		}
		totalRecords += info.Records
		totalSegments += len(info.Segments)
		for _, seg := range info.Segments {
			torn += seg.TornBytes
		}
	}
	fmt.Printf("recovery replays %d record(s) from %d segment(s)", totalRecords, totalSegments)
	if torn > 0 {
		fmt.Printf("; %d torn byte(s) will be truncated", torn)
	}
	fmt.Println()
	return nil
}

func isTTY() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
