package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/client"
	"repro/internal/kvwire"
)

// Online backup/restore against a running kvserver.
//
//	kvcli backup  <addr> <file>    stream a consistent checkpoint to file
//	kvcli restore <addr> <file>    replay a backup file into a server
//
// Backup file format (all integers uvarint unless noted):
//
//	magic "RHIKBK1\n"
//	count
//	count × (keyLen key valueLen value), in key order
//	u32 LE crc — kvwire.BackupCRC over the entries in file order
//
// The file carries no epoch, so a quiesced re-backup of a restored
// store is byte-identical to the original file (cmp-able). The file is
// written to <file>.tmp and renamed only after the stream's trailer
// verified, so a partial stream (killed server) never leaves a
// plausible-looking backup behind.

const backupMagic = "RHIKBK1\n"

type backupEntry struct{ key, value []byte }

func runBackup(addr, file string) error {
	c, err := client.Dial(client.Options{Addr: addr})
	if err != nil {
		return err
	}
	defer c.Close()

	var entries []backupEntry
	res, err := c.Backup(0, func(key, value []byte) error {
		entries = append(entries, backupEntry{
			key:   append([]byte(nil), key...),
			value: append([]byte(nil), value...),
		})
		return nil
	})
	if err != nil {
		return err
	}
	if err := writeBackupFile(file, entries); err != nil {
		return err
	}
	fmt.Printf("backup: %d entries at epoch %d -> %s\n", res.Entries, res.Epoch, file)
	return nil
}

func writeBackupFile(file string, entries []backupEntry) error {
	tmp := file + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 256<<10)
	var crc uint32
	var lb [binary.MaxVarintLen64]byte
	writeBlob := func(b []byte) error {
		n := binary.PutUvarint(lb[:], uint64(len(b)))
		if _, err := bw.Write(lb[:n]); err != nil {
			return err
		}
		_, err := bw.Write(b)
		return err
	}
	err = func() error {
		if _, err := bw.WriteString(backupMagic); err != nil {
			return err
		}
		n := binary.PutUvarint(lb[:], uint64(len(entries)))
		if _, err := bw.Write(lb[:n]); err != nil {
			return err
		}
		for i, e := range entries {
			if i > 0 && bytes.Compare(entries[i-1].key, e.key) >= 0 {
				return fmt.Errorf("backup stream not in key order at entry %d", i)
			}
			if err := writeBlob(e.key); err != nil {
				return err
			}
			if err := writeBlob(e.value); err != nil {
				return err
			}
			crc = kvwire.BackupCRC(crc, e.key, e.value)
		}
		var cb [4]byte
		binary.LittleEndian.PutUint32(cb[:], crc)
		if _, err := bw.Write(cb[:]); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, file)
}

func readBackupFile(file string) ([]backupEntry, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256<<10)
	magic := make([]byte, len(backupMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != backupMagic {
		return nil, fmt.Errorf("%s: not a backup file", file)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%s: truncated header: %w", file, err)
	}
	readBlob := func() ([]byte, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if n > kvwire.MaxValueLen {
			return nil, fmt.Errorf("blob too large (%d bytes)", n)
		}
		b := make([]byte, n)
		_, err = io.ReadFull(br, b)
		return b, err
	}
	entries := make([]backupEntry, 0, count)
	var crc uint32
	for i := uint64(0); i < count; i++ {
		var e backupEntry
		if e.key, err = readBlob(); err != nil {
			return nil, fmt.Errorf("%s: entry %d: %w", file, i, err)
		}
		if e.value, err = readBlob(); err != nil {
			return nil, fmt.Errorf("%s: entry %d: %w", file, i, err)
		}
		crc = kvwire.BackupCRC(crc, e.key, e.value)
		entries = append(entries, e)
	}
	var cb [4]byte
	if _, err := io.ReadFull(br, cb[:]); err != nil {
		return nil, fmt.Errorf("%s: truncated trailer: %w", file, err)
	}
	if want := binary.LittleEndian.Uint32(cb[:]); want != crc {
		return nil, fmt.Errorf("%s: CRC mismatch: file says %#x, entries hash to %#x", file, want, crc)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%s: trailing garbage after trailer", file)
	}
	return entries, nil
}

func runRestore(addr, file string) error {
	entries, err := readBackupFile(file)
	if err != nil {
		return err
	}
	c, err := client.Dial(client.Options{Addr: addr})
	if err != nil {
		return err
	}
	defer c.Close()

	const batchSize = 256
	var b client.Batch
	flush := func() error {
		if b.Len() == 0 {
			return nil
		}
		res, err := c.Do(&b)
		if err != nil {
			return err
		}
		for _, e := range res.Errs {
			if e != nil {
				return fmt.Errorf("restore put: %w", e)
			}
		}
		b.Reset()
		return nil
	}
	for _, e := range entries {
		b.Put(e.key, e.value)
		if b.Len() >= batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Printf("restore: %d entries from %s -> %s\n", len(entries), file, addr)
	return nil
}
