package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/client"
)

// Cache-tier report against a running kvserver:
//
//	kvcli cachestats <addr>
//
// One STATS round trip, printed as a single table covering every DRAM
// tier in front of flash: the index-page cache (hit ratio plus TinyLFU
// admission rejects), the hot-value cache, and scan prefetch
// effectiveness. Ratios are since server start or the last stats reset.
// Against an older server the new counters decode as zero (the wire
// STATS payload is field-count versioned), so the table just reports
// idle tiers rather than failing.
func runCacheStats(addr string) error {
	c, err := client.Dial(client.Options{Addr: addr})
	if err != nil {
		return err
	}
	defer c.Close()

	s, err := c.Stats()
	if err != nil {
		return err
	}

	ratio := func(hits, misses uint64) string {
		total := hits + misses
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total))
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "TIER\tHITS\tMISSES\tHIT RATIO\tNOTES")
	fmt.Fprintf(w, "index pages\t%d\t%d\t%s\t%d admission reject(s)\n",
		s.CacheHits, s.CacheMisses, ratio(s.CacheHits, s.CacheMisses),
		s.AdmissionRejects)
	fmt.Fprintf(w, "hot values\t%d\t%d\t%s\t%s\n",
		s.ValueCacheHits, s.ValueCacheMisses,
		ratio(s.ValueCacheHits, s.ValueCacheMisses),
		enabledNote(s.ValueCacheHits+s.ValueCacheMisses, "value tier off or idle"))
	fmt.Fprintf(w, "scan prefetch\t%d\t-\t-\t%s\n",
		s.PrefetchHits,
		enabledNote(s.PrefetchHits, "prefetch off or no scans"))
	if err := w.Flush(); err != nil {
		return err
	}

	// Prefetch hits are flash reads a scan did NOT issue; fold them into
	// the flash-read picture so the three rows share a denominator.
	saved := s.CacheHits + s.ValueCacheHits + s.PrefetchHits
	fmt.Printf("flash reads issued: %d; reads avoided by DRAM tiers: %d\n",
		s.FlashReads, saved)
	return nil
}

func enabledNote(activity uint64, idle string) string {
	if activity == 0 {
		return idle
	}
	return ""
}
