// Command rhikbench regenerates the paper's tables and figures on the
// emulated KVSSD. Each experiment prints the same rows/series the paper
// reports, at emulator scale.
//
// Usage:
//
//	rhikbench [-scale full|quick] [-out FILE] table1|fig2|fig5|fig6|fig7|fig8a|fig8b|all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	scaleFlag := flag.String("scale", "full", "experiment scale: full or quick")
	outFlag := flag.String("out", "", "write results to FILE instead of stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rhikbench [-scale full|quick] [-out FILE] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 fig2 fig5 fig6 fig7 fig8a fig8b resize-ablation all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "full":
		scale = bench.Full()
	case "quick":
		scale = bench.Quick()
	default:
		fmt.Fprintf(os.Stderr, "rhikbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhikbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	if err := run(w, flag.Arg(0), scale); err != nil {
		fmt.Fprintf(os.Stderr, "rhikbench: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, name string, scale bench.Scale) error {
	experiments := []struct {
		name string
		fn   func(io.Writer, bench.Scale) error
	}{
		{"table1", func(w io.Writer, _ bench.Scale) error { bench.Table1(w); return nil }},
		{"fig2", func(w io.Writer, s bench.Scale) error { _, err := bench.Fig2(w, s); return err }},
		{"fig5", func(w io.Writer, s bench.Scale) error { _, err := bench.Fig5(w, s); return err }},
		{"fig6", func(w io.Writer, s bench.Scale) error { _, err := bench.Fig6(w, s); return err }},
		{"fig7", func(w io.Writer, s bench.Scale) error { _, err := bench.Fig7(w, s); return err }},
		{"fig8a", func(w io.Writer, s bench.Scale) error { _, err := bench.Fig8a(w, s); return err }},
		{"fig8b", func(w io.Writer, s bench.Scale) error { _, err := bench.Fig8b(w, s); return err }},
		{"resize-ablation", func(w io.Writer, s bench.Scale) error { _, err := bench.AblationResizeMode(w, s); return err }},
	}
	for _, e := range experiments {
		if name != "all" && name != e.name {
			continue
		}
		start := time.Now()
		if err := e.fn(w, scale); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintf(w, "[%s done in %v wall time, scale=%s]\n\n", e.name, time.Since(start).Round(time.Millisecond), scale.Name)
		if name == e.name {
			return nil
		}
	}
	if name != "all" {
		found := false
		for _, e := range experiments {
			if e.name == name {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	return nil
}
