package main

import (
	"io"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestRunTable1(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "table1", bench.Quick()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table I", "baidu-atlas-write", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(io.Discard, "fig99", bench.Quick()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunResizeAblationQuick(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "resize-ablation", bench.Quick()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "incremental") {
		t.Error("ablation output missing incremental row")
	}
}
