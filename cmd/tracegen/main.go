// Command tracegen synthesizes IBM Cloud Object Store-style KV traces
// for the Fig. 5 clusters (the originals are not redistributable; see
// DESIGN.md §5 for the substitution rationale).
//
// Usage:
//
//	tracegen -cluster 083 -seed 42 -o trace-083.txt
//	tracegen -all -dir traces/
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/trace"
)

func main() {
	cluster := flag.String("cluster", "", "cluster name (001, 022, 026, 052, 072, 081, 083, 096)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	all := flag.Bool("all", false, "generate every cluster")
	dir := flag.String("dir", ".", "output directory for -all")
	list := flag.Bool("list", false, "list cluster specs and exit")
	scale := flag.Int("scale", 1, "divide cluster sizes by this factor")
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-12s %-12s %-10s %-8s %-8s\n",
			"cluster", "uniqueKeys", "accessOps", "readFrac", "theta", "valueB")
		for _, c := range trace.Clusters() {
			fmt.Printf("%-8s %-12d %-12d %-10.2f %-8.2f %-8d\n",
				c.Name, c.UniqueKeys, c.AccessOps, c.ReadFrac, c.Theta, c.ValueSize)
		}
		return
	}

	if *all {
		for _, spec := range trace.Clusters() {
			path := filepath.Join(*dir, fmt.Sprintf("trace-%s.txt", spec.Name))
			if err := generate(spec, *seed, *scale, path); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		return
	}

	if *cluster == "" {
		fmt.Fprintln(os.Stderr, "tracegen: need -cluster, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}
	spec, err := trace.Cluster(*cluster)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		spec = scaled(spec, *scale)
		if err := trace.Write(os.Stdout, trace.Synthesize(spec, *seed)); err != nil {
			fatal(err)
		}
		return
	}
	if err := generate(spec, *seed, *scale, *out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func scaled(spec trace.ClusterSpec, factor int) trace.ClusterSpec {
	if factor > 1 {
		spec.UniqueKeys /= factor
		spec.AccessOps /= factor
		if spec.UniqueKeys < 1 {
			spec.UniqueKeys = 1
		}
	}
	return spec
}

func generate(spec trace.ClusterSpec, seed int64, factor int, path string) error {
	spec = scaled(spec, factor)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.Write(f, trace.Synthesize(spec, seed))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
