package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestScaledClampsAndDivides(t *testing.T) {
	spec := trace.ClusterSpec{UniqueKeys: 100, AccessOps: 200}
	got := scaled(spec, 10)
	if got.UniqueKeys != 10 || got.AccessOps != 20 {
		t.Fatalf("scaled = %+v", got)
	}
	tiny := scaled(trace.ClusterSpec{UniqueKeys: 3, AccessOps: 3}, 10)
	if tiny.UniqueKeys != 1 {
		t.Fatalf("UniqueKeys clamped to %d", tiny.UniqueKeys)
	}
	same := scaled(spec, 1)
	if same != spec {
		t.Fatal("factor 1 must be identity")
	}
}

func TestGenerateWritesParsableTrace(t *testing.T) {
	dir := t.TempDir()
	spec, err := trace.Cluster("022")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "t.txt")
	if err := generate(spec, 1, 100, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
}
