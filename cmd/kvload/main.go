// Command kvload is a closed-loop load generator for kvserver: N worker
// goroutines each keep exactly one request outstanding (optionally a
// BATCH frame of many ops), spread across a pooled pipelined client
// connection set, and report wall-clock throughput plus request-latency
// percentiles from the shared metrics histogram.
//
// Closed-loop means offered load adapts to service rate — workers wait
// for each response before issuing the next request — so the reported
// latency is uninflated by client-side queueing and the throughput is
// the sustainable rate at that concurrency.
//
// Besides the classic read/write/mixed mixes, -mix accepts the YCSB core
// workloads (ycsb-a … ycsb-f): each worker replays its own deterministic
// generator stream over the -keys ID space (use -preload to populate it
// first). YCSB-E's short scans are real wire SCAN requests — one
// round trip resolved by the server's device-side Iterate — so the
// server must run with -prefixlen 14 (the YCSB key-group width); a
// server without iterator-mode signatures rejects them with
// BAD_REQUEST. -scanlen caps the keys returned per scan.
//
// -rate with -shape modulates offered load over the run (diurnal ramp,
// flash-crowd burst): workers switch from closed-loop to paced issue, so
// reported latency then includes client-side queueing when the server
// falls behind the shaped rate — which is the point of the experiment.
//
// Examples:
//
//	kvload -addr 127.0.0.1:7700 -duration 5s -concurrency 32 -batch 64
//	kvload -addr 127.0.0.1:7700 -n 100000 -mix mixed -value 1024
//	kvload -addr 127.0.0.1:7700 -mix ycsb-a -preload -duration 10s
//	kvload -addr 127.0.0.1:7700 -mix ycsb-b -rate 50000 -shape diurnal
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/kvwire"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7700", "kvserver TCP address")
		conns       = flag.Int("conns", 4, "pooled connections")
		concurrency = flag.Int("concurrency", 16, "closed-loop worker goroutines")
		duration    = flag.Duration("duration", 5*time.Second, "run length (ignored when -n > 0)")
		nops        = flag.Int64("n", 0, "total operation budget (0 = run for -duration)")
		valueSize   = flag.Int("value", 128, "value size in bytes")
		keyspace    = flag.Int64("keys", 100_000, "distinct keys")
		mixName     = flag.String("mix", "mixed", "operation mix: write, read, mixed, or ycsb-a..ycsb-f")
		batchSize   = flag.Int("batch", 64, "ops per BATCH frame (1 = single-op frames; YCSB mixes are always single-op)")
		seed        = flag.Int64("seed", 42, "generator seed")
		retries     = flag.Int("retries", 16, "client retry budget for BUSY")
		readers     = flag.Int("readers", 0, "dedicated GET-only workers (with -writers, replaces -concurrency/-mix)")
		writers     = flag.Int("writers", 0, "dedicated PUT-only workers (with -readers, replaces -concurrency/-mix)")
		preload     = flag.Bool("preload", false, "store all -keys sequentially before the timed run (YCSB assumes a loaded table)")
		scanLen     = flag.Int("scanlen", 16, "max keys per YCSB-E SCAN request (server needs -prefixlen 14)")
		rate        = flag.Float64("rate", 0, "target offered load in ops/s (0 = closed loop); shaped by -shape")
		shapeName   = flag.String("shape", "steady", "offered-load shape over the run: steady, diurnal, flash-crowd")
	)
	flag.Parse()
	if *batchSize < 1 || *keyspace < 1 {
		fatalf("-batch and -keys must be >= 1")
	}
	if *readers < 0 || *writers < 0 {
		fatalf("-readers and -writers must be >= 0")
	}
	shape, err := workload.ParseShape(*shapeName)
	if err != nil {
		fatalf("%v", err)
	}
	var putFrac float64
	var ycsb *workload.YCSBSpec
	switch *mixName {
	case "write":
		putFrac = 1.0
	case "read":
		putFrac = 0.0
	case "mixed":
		putFrac = 0.5
	default:
		if strings.HasPrefix(*mixName, "ycsb") {
			spec, err := workload.YCSBWorkload(*mixName)
			if err != nil {
				fatalf("%v", err)
			}
			ycsb = &spec
			break
		}
		fatalf("unknown mix %q", *mixName)
	}
	if ycsb != nil && (*readers > 0 || *writers > 0) {
		fatalf("-readers/-writers cannot be combined with a YCSB mix")
	}
	// Role split: when -readers/-writers are set, each worker is pinned to
	// one op type instead of sampling the -mix. This is how the sharded
	// read-pool server is meant to be exercised: readers saturate the
	// shared lock path while writers churn the exclusive one.
	roleSplit := *readers > 0 || *writers > 0
	if roleSplit {
		*concurrency = *readers + *writers
	}
	if *concurrency < 1 {
		fatalf("need at least one worker (-concurrency, or -readers/-writers)")
	}
	// workerPutFrac reports the put probability for worker w.
	workerPutFrac := func(w int) float64 {
		if !roleSplit {
			return putFrac
		}
		if w < *writers {
			return 1.0
		}
		return 0.0
	}

	c, err := client.Dial(client.Options{Addr: *addr, Conns: *conns, MaxRetries: *retries})
	if err != nil {
		fatalf("dial %s: %v", *addr, err)
	}
	defer c.Close()

	type tally struct {
		ops, requests, notFound, failed int64
		gets, puts, scans               int64
		lat, getLat, putLat             metrics.Histogram
		err                             error
	}
	tallies := make([]tally, *concurrency)
	var opsBudget atomic.Int64
	opsBudget.Store(*nops)
	deadline := time.Now().Add(*duration)

	value := make([]byte, *valueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	// keyFor renders a key ID: YCSB mixes use the canonical hierarchical
	// hex keys (so scans address adjacent IDs), classic mixes keep the
	// historical decimal format.
	keyFor := func(id int64) []byte {
		if ycsb != nil {
			return workload.KeyBytes(uint64(id))
		}
		return fmt.Appendf(nil, "key%016d", id)
	}

	if *preload {
		preStart := time.Now()
		if err := preloadKeys(c, keyFor, *keyspace, *conns); err != nil {
			fatalf("preload: %v", err)
		}
		fmt.Printf("preload: %d keys in %v\n", *keyspace, time.Since(preStart).Round(time.Millisecond))
	}

	var wg sync.WaitGroup
	start := time.Now()
	newPacer := func() *pacer {
		return &pacer{
			perWorker: *rate / float64(*concurrency),
			shape:     shape,
			start:     start,
			duration:  *duration,
		}
	}
	// runYCSB replays one worker's deterministic YCSB stream, one op per
	// request; YCSB-E scans are single SCAN round trips.
	runYCSB := func(w int, tl *tally) {
		gen, err := workload.NewYCSB(*ycsb, uint64(*keyspace), workload.Fixed{Size: *valueSize}, *seed+int64(w))
		if err != nil {
			tl.err = err
			return
		}
		pace := newPacer()
		get := func(id uint64) bool {
			reqStart := time.Now()
			_, err := c.Get(workload.KeyBytes(id))
			lat := time.Since(reqStart).Nanoseconds()
			if errors.Is(err, kvwire.ErrNotFound) {
				tl.notFound++
				err = nil
			}
			if err != nil {
				tl.err = err
				return false
			}
			tl.gets++
			tl.getLat.Record(lat)
			tl.lat.Record(lat)
			tl.requests++
			return true
		}
		put := func(id uint64) bool {
			reqStart := time.Now()
			err := c.Put(workload.KeyBytes(id), value)
			lat := time.Since(reqStart).Nanoseconds()
			if err != nil {
				tl.err = err
				return false
			}
			tl.puts++
			tl.putLat.Record(lat)
			tl.lat.Record(lat)
			tl.requests++
			return true
		}
		for {
			if *nops > 0 {
				if opsBudget.Add(-1) < 0 {
					return
				}
			} else if time.Now().After(deadline) {
				return
			}
			pace.wait(1)
			op := gen.Next()
			ok := true
			switch op.Kind {
			case workload.OpRetrieve:
				ok = get(op.KeyID)
			case workload.OpStore:
				ok = put(op.KeyID)
			case workload.OpIterate:
				// Real short scan: one SCAN frame over the op's key group.
				prefix := workload.KeyBytes(op.KeyID)[:op.ScanPrefix]
				reqStart := time.Now()
				entries, err := c.Scan(prefix, *scanLen)
				lat := time.Since(reqStart).Nanoseconds()
				if err != nil {
					if errors.Is(err, kvwire.ErrBadRequest) {
						err = fmt.Errorf("SCAN rejected (run kvserver with -prefixlen %d): %w", op.ScanPrefix, err)
					}
					tl.err = err
					return
				}
				if len(entries) == 0 {
					tl.notFound++
				}
				tl.scans++
				tl.lat.Record(lat)
				tl.requests++
			case workload.OpRMW:
				ok = get(op.KeyID) && put(op.KeyID)
			}
			if !ok {
				return
			}
			tl.ops++
		}
	}

	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl := &tallies[w]
			if ycsb != nil {
				runYCSB(w, tl)
				return
			}
			putFrac := workerPutFrac(w)
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			pace := newPacer()
			key := make([]byte, 0, 24)
			nextKey := func() []byte {
				key = key[:0]
				return fmt.Appendf(key, "key%016d", rng.Int63n(*keyspace))
			}
			for {
				if *nops > 0 {
					if opsBudget.Add(-int64(*batchSize)) < 0 {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				pace.wait(*batchSize)
				var reqStart time.Time
				if *batchSize == 1 {
					k := nextKey()
					isPut := rng.Float64() < putFrac
					reqStart = time.Now()
					var err error
					if isPut {
						err = c.Put(k, value)
					} else {
						_, err = c.Get(k)
					}
					opLat := time.Since(reqStart).Nanoseconds()
					if errors.Is(err, kvwire.ErrNotFound) {
						tl.notFound++
						err = nil
					}
					if err != nil {
						tl.err = err
						return
					}
					tl.ops++
					if isPut {
						tl.puts++
						tl.putLat.Record(opLat)
					} else {
						tl.gets++
						tl.getLat.Record(opLat)
					}
				} else {
					var b client.Batch
					for i := 0; i < *batchSize; i++ {
						if rng.Float64() < putFrac {
							tl.puts++
							// Keys must outlive the loop iteration; the
							// batch aliases them until Do encodes.
							b.Put(fmt.Appendf(nil, "key%016d", rng.Int63n(*keyspace)), value)
						} else {
							tl.gets++
							b.Get(fmt.Appendf(nil, "key%016d", rng.Int63n(*keyspace)))
						}
					}
					reqStart = time.Now()
					res, err := c.Do(&b)
					if err != nil {
						tl.err = err
						return
					}
					for _, e := range res.Errs {
						switch {
						case e == nil:
						case errors.Is(e, kvwire.ErrNotFound):
							tl.notFound++
						default:
							tl.failed++
						}
					}
					tl.ops += int64(b.Len())
				}
				tl.lat.Record(time.Since(reqStart).Nanoseconds())
				tl.requests++
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	var tot tally
	for i := range tallies {
		tl := &tallies[i]
		if tl.err != nil {
			fatalf("worker %d: %v", i, tl.err)
		}
		tot.ops += tl.ops
		tot.requests += tl.requests
		tot.notFound += tl.notFound
		tot.failed += tl.failed
		tot.gets += tl.gets
		tot.puts += tl.puts
		tot.scans += tl.scans
		tot.lat.Merge(&tl.lat)
		tot.getLat.Merge(&tl.getLat)
		tot.putLat.Merge(&tl.putLat)
	}

	mixDesc := *mixName
	if roleSplit {
		mixDesc = fmt.Sprintf("readers=%d writers=%d", *readers, *writers)
	}
	fmt.Printf("kvload: addr=%s conns=%d concurrency=%d batch=%d mix=%s value=%dB keys=%d\n",
		*addr, *conns, *concurrency, *batchSize, mixDesc, *valueSize, *keyspace)
	fmt.Printf("ops: %d in %d requests over %v (%d not-found, %d failed)\n",
		tot.ops, tot.requests, wall.Round(time.Millisecond), tot.notFound, tot.failed)
	if wall > 0 {
		fmt.Printf("throughput: %.1f kops/s (%.1f req/s)\n",
			float64(tot.ops)/wall.Seconds()/1e3, float64(tot.requests)/wall.Seconds())
		fmt.Printf("split: %d gets (%.1f kops/s), %d puts (%.1f kops/s)",
			tot.gets, float64(tot.gets)/wall.Seconds()/1e3,
			tot.puts, float64(tot.puts)/wall.Seconds()/1e3)
		if tot.scans > 0 {
			fmt.Printf(", %d scans (%.1f kops/s)", tot.scans, float64(tot.scans)/wall.Seconds()/1e3)
		}
		fmt.Println()
	}
	us := func(h *metrics.Histogram, p float64) float64 { return float64(h.Percentile(p)) / 1e3 }
	fmt.Printf("request latency: p50=%.1fµs p90=%.1fµs p99=%.1fµs max=%.1fµs\n",
		us(&tot.lat, 50), us(&tot.lat, 90), us(&tot.lat, 99), float64(tot.lat.Max())/1e3)
	// Per-op-type latency exists only in single-op mode (YCSB mixes are
	// always single-op); batch frames mix op types inside one round trip.
	if *batchSize == 1 || ycsb != nil {
		if tot.gets > 0 {
			fmt.Printf("GET latency:     p50=%.1fµs p90=%.1fµs p99=%.1fµs max=%.1fµs\n",
				us(&tot.getLat, 50), us(&tot.getLat, 90), us(&tot.getLat, 99), float64(tot.getLat.Max())/1e3)
		}
		if tot.puts > 0 {
			fmt.Printf("PUT latency:     p50=%.1fµs p90=%.1fµs p99=%.1fµs max=%.1fµs\n",
				us(&tot.putLat, 50), us(&tot.putLat, 90), us(&tot.putLat, 99), float64(tot.putLat.Max())/1e3)
		}
	}

	if st, err := c.Stats(); err == nil {
		fmt.Printf("server: shards=%d stores=%d retrieves=%d records=%d resizes=%d storeP99=%v\n",
			st.Shards, st.Stores, st.Retrieves, st.IndexRecords, st.Resizes,
			time.Duration(st.StoreP99ns))
		if st.WALGroups > 0 {
			fmt.Printf("server wal: records=%d groups=%d fsyncs=%d groupP50=%d groupMax=%d (%.2f recs/fsync)\n",
				st.WALRecords, st.WALGroups, st.WALFsyncs, st.WALGroupP50, st.WALGroupMax,
				float64(st.WALRecords)/float64(max(st.WALFsyncs, 1)))
		}
	}
	if tot.failed > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kvload: "+format+"\n", args...)
	os.Exit(1)
}

// pacer turns -rate and -shape into per-worker issue times. With no rate
// it is a no-op (closed loop). Run progress for the shape comes from
// -duration; in -n mode the shape still tracks elapsed wall time against
// -duration, so pair -rate/-shape with -duration runs.
type pacer struct {
	perWorker float64 // target ops/s for this worker at shape peak
	shape     workload.LoadShape
	start     time.Time
	duration  time.Duration
	next      time.Time
}

// wait sleeps until the next n-op issue slot under the shaped rate.
func (p *pacer) wait(n int) {
	if p.perWorker <= 0 {
		return
	}
	x := 0.0
	if p.duration > 0 {
		x = float64(time.Since(p.start)) / float64(p.duration)
	}
	interval := time.Duration(float64(n) * float64(time.Second) / (p.perWorker * p.shape.RelRate(x)))
	if p.next.IsZero() {
		p.next = time.Now()
	}
	p.next = p.next.Add(interval)
	if d := time.Until(p.next); d > 0 {
		time.Sleep(d)
	}
}

// preloadKeys populates the whole key space with batched PUTs before the
// timed run, sharded across a few goroutines.
func preloadKeys(c *client.Client, keyFor func(int64) []byte, keys int64, conns int) error {
	workers := conns
	if workers < 1 {
		workers = 1
	}
	if workers > 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	per := (keys + int64(workers) - 1) / int64(workers)
	for w := 0; w < workers; w++ {
		lo, hi := int64(w)*per, (int64(w)+1)*per
		if hi > keys {
			hi = keys
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			val := make([]byte, 128)
			for id := lo; id < hi; {
				var b client.Batch
				for i := 0; i < 128 && id < hi; i++ {
					b.Put(keyFor(id), val)
					id++
				}
				if res, err := c.Do(&b); err != nil {
					errCh <- err
					return
				} else {
					for _, e := range res.Errs {
						if e != nil {
							errCh <- e
							return
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}
