// Command shootout runs the cross-engine YCSB shootout: every (engine ×
// workload) cell under identical seeds, on identical emulated hardware,
// and writes the grid to a JSON report (default results/SHOOTOUT.json).
//
//	go run ./cmd/shootout -records 50000 -ops 100000
//	go run ./cmd/shootout -engines rhik,lsm -workloads ycsb-a,ycsb-c -quick
//
// Throughput and latency are simulated device time, so the numbers are
// deterministic for a given configuration — rerunning the shootout on a
// different host must reproduce every figure except wall_ms.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		engines   = flag.String("engines", "", "comma-separated engine names (default: all registered)")
		workloads = flag.String("workloads", "", "comma-separated YCSB workloads, e.g. ycsb-a,ycsb-e (default: a-f)")
		records   = flag.Int("records", 0, "preloaded record count (default 50000)")
		ops       = flag.Int("ops", 0, "measured op count (default 100000)")
		seed      = flag.Int64("seed", 0, "generator seed, shared by every cell (default 42)")
		theta     = flag.Float64("theta", 0, "override key-popularity zipfian theta (default: per-spec, 0.99)")
		vmin      = flag.Int("vmin", 0, "min value size in bytes (default 64)")
		vmax      = flag.Int("vmax", 0, "max value size in bytes (default 4096; equal to vmin = fixed)")
		capacity  = flag.Int64("capacity", 0, "device capacity in bytes (default 256 MiB)")
		cache     = flag.Int64("cache", 0, "index DRAM budget in bytes (default 512 KiB)")
		valCache  = flag.Int64("value-cache", 0, "hot-value DRAM budget in bytes (default 0: tier off)")
		admission = flag.Bool("cache-admission", false, "TinyLFU admission on the index-page cache")
		prefetch  = flag.Bool("scan-prefetch", false, "stage each distinct data page once per prefix scan")
		quick     = flag.Bool("quick", false, "tiny smoke-test grid (2k records, 4k ops, 2 engines x 2 workloads unless overridden)")
		out       = flag.String("o", filepath.Join("results", "SHOOTOUT.json"), "output JSON path")
	)
	flag.Parse()

	cfg := bench.ShootoutConfig{
		Records:          *records,
		Ops:              *ops,
		Seed:             *seed,
		Theta:            *theta,
		ValueMin:         *vmin,
		ValueMax:         *vmax,
		Capacity:         *capacity,
		CacheBudget:      *cache,
		ValueCacheBudget: *valCache,
		CacheAdmission:   *admission,
		ScanPrefetch:     *prefetch,
	}
	if *engines != "" {
		cfg.Engines = strings.Split(*engines, ",")
	}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}
	if *quick {
		if cfg.Records == 0 {
			cfg.Records = 2000
		}
		if cfg.Ops == 0 {
			cfg.Ops = 4000
		}
		if cfg.CacheBudget == 0 {
			cfg.CacheBudget = 128 << 10
		}
		if len(cfg.Engines) == 0 {
			cfg.Engines = []string{"rhik", "lsm"}
		}
		if len(cfg.Workloads) == 0 {
			cfg.Workloads = []string{"ycsb-a", "ycsb-e"}
		}
	}

	res, err := bench.RunShootout(cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shootout:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "shootout: marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "shootout:", err)
			os.Exit(1)
		}
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "shootout:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "shootout: wrote %s (%d cells)\n", *out, len(res.Cells))
}
