package rhik_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	rhik "repro"
	"repro/internal/workload"
)

// TestIntegrationMixedWorkloadWithRecovery drives the full stack — log
// writes, resizes, GC, tombstones, checkpointing, crash recovery —
// against an in-memory oracle.
func TestIntegrationMixedWorkloadWithRecovery(t *testing.T) {
	// Shards: 1 — the mid-run resize assertion needs the whole key
	// population in one device's directory.
	db := openDB(t, rhik.Options{Capacity: 64 << 20, CheckpointEveryOps: 2500, Shards: 1})
	oracle := map[string][]byte{}
	rng := rand.New(rand.NewSource(99))

	const steps = 12000
	for i := 0; i < steps; i++ {
		id := uint64(rng.Intn(3000))
		key := workload.KeyBytes(id)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // store / update
			val := workload.ValuePayload(uint64(i), 32+rng.Intn(400))
			if err := db.Store(key, val); err != nil {
				t.Fatalf("step %d store: %v", i, err)
			}
			oracle[string(key)] = val
		case 6, 7: // retrieve + verify
			want, exists := oracle[string(key)]
			got, err := db.Retrieve(key)
			if exists {
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("step %d retrieve mismatch: %v", i, err)
				}
			} else if !errors.Is(err, rhik.ErrNotFound) {
				t.Fatalf("step %d: expected not-found, got %v", i, err)
			}
		case 8: // delete
			err := db.Delete(key)
			if _, exists := oracle[string(key)]; exists {
				if err != nil {
					t.Fatalf("step %d delete: %v", i, err)
				}
				delete(oracle, string(key))
			} else if !errors.Is(err, rhik.ErrNotFound) {
				t.Fatalf("step %d: delete of absent key: %v", i, err)
			}
		case 9: // exist
			ok, err := db.Exist(key)
			if err != nil {
				t.Fatalf("step %d exist: %v", i, err)
			}
			if _, exists := oracle[string(key)]; ok != exists {
				t.Fatalf("step %d: exist=%v oracle=%v", i, ok, exists)
			}
		}
		// Mid-stream crash: everything checkpointed or programmed must
		// survive; the volatile window is bounded by the auto-checkpoint.
		if i == steps/2 {
			// Resize history is volatile device state: assert growth
			// happened before the power cycle wipes the counters.
			if db.Stats().Resizes == 0 {
				t.Fatal("no resizes in first half of integration run")
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := db.Restart(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Final verification sweep.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Restart(); err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		got, err := db.Retrieve([]byte(k))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("post-recovery key %x: %v", k, err)
		}
	}
	s := db.Stats()
	if s.Recoveries != 2 {
		t.Fatalf("recoveries = %d", s.Recoveries)
	}
	// The recovered directory must retain its grown size: post-restart
	// occupancy stays below the resize threshold without re-resizing.
	if s.DirectoryEntries < 2 {
		t.Fatalf("directory entries = %d after recovery, want grown index", s.DirectoryEntries)
	}
}

// TestIntegrationConcurrentClients exercises the facade's locking: many
// goroutines over disjoint key ranges. Run with -race to check the
// device's single-threaded invariants are protected.
func TestIntegrationConcurrentClients(t *testing.T) {
	db := openDB(t, rhik.Options{Capacity: 64 << 20})
	const (
		clients    = 8
		perClient  = 300
		valueBytes = 64
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(c) << 32
			for i := 0; i < perClient; i++ {
				key := workload.KeyBytes(base + uint64(i))
				val := workload.ValuePayload(base+uint64(i), valueBytes)
				if err := db.Store(key, val); err != nil {
					errs <- fmt.Errorf("client %d store %d: %w", c, i, err)
					return
				}
				got, err := db.Retrieve(key)
				if err != nil || !bytes.Equal(got, val) {
					errs <- fmt.Errorf("client %d readback %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.Stats().IndexRecords; got != clients*perClient {
		t.Fatalf("records = %d, want %d", got, clients*perClient)
	}
}

// TestIntegrationLargeValuesAndIterator mixes extent-sized values with
// iterator-mode signatures.
func TestIntegrationLargeValuesAndIterator(t *testing.T) {
	db := openDB(t, rhik.Options{Capacity: 128 << 20, IteratorPrefixLen: 4})
	big := workload.ValuePayload(7, 300<<10) // multi-page extent
	if err := db.Store([]byte("blob:huge"), big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Store([]byte(fmt.Sprintf("blob:%04d", i)), workload.ValuePayload(uint64(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.Retrieve([]byte("blob:huge"))
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("extent readback: %v", err)
	}
	entries, err := db.Iterate([]byte("blob:"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 51 {
		t.Fatalf("iterate found %d, want 51", len(entries))
	}
	// Restart and iterate again: recovery must rebuild iterator state.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Restart(); err != nil {
		t.Fatal(err)
	}
	entries, err = db.Iterate([]byte("blob:"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 51 {
		t.Fatalf("post-recovery iterate found %d, want 51", len(entries))
	}
}
