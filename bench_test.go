// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus microbenchmarks of the core operations and ablations
// of RHIK's design choices. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks run at quick scale by default so the suite finishes
// in minutes; `go run ./cmd/rhikbench -scale full all` runs the full
// versions and prints the paper-style tables.
package rhik_test

import (
	"fmt"
	"io"
	"testing"

	rhik "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

// benchScale picks the experiment scale for Benchmark* figure runs.
func benchScale(b *testing.B) bench.Scale {
	if testing.Short() {
		return bench.Quick()
	}
	return bench.Quick() // full-scale runs belong to cmd/rhikbench
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(io.Discard)
	}
}

func BenchmarkFig2WriteBandwidthVsUtilization(b *testing.B) {
	s := benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig2(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5TraceClusters(b *testing.B) {
	s := benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ThroughputSweep(b *testing.B) {
	s := benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ResizeScaling(b *testing.B) {
	s := benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8aCollisionsByKeySize(b *testing.B) {
	s := benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8a(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8bCollisionsByOccupancy(b *testing.B) {
	s := benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8b(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationResizeMode(b *testing.B) {
	s := benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationResizeMode(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- microbenchmarks of the public API ---

func newBenchDB(b *testing.B, opts rhik.Options) *rhik.DB {
	b.Helper()
	if opts.Capacity == 0 {
		opts.Capacity = 256 << 20
	}
	db, err := rhik.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkStoreSmallValues(b *testing.B) {
	db := newBenchDB(b, rhik.Options{})
	val := workload.ValuePayload(0, 128)
	b.SetBytes(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Store(workload.KeyBytes(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStore4KValues(b *testing.B) {
	db := newBenchDB(b, rhik.Options{})
	val := workload.ValuePayload(0, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Store(workload.KeyBytes(uint64(i%30000)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrieveHot(b *testing.B) {
	db := newBenchDB(b, rhik.Options{AnticipatedKeys: 20000})
	const n = 10000
	val := workload.ValuePayload(0, 512)
	for i := 0; i < n; i++ {
		if err := db.Store(workload.KeyBytes(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Retrieve(workload.KeyBytes(uint64(i % n))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExist(b *testing.B) {
	db := newBenchDB(b, rhik.Options{})
	for i := 0; i < 5000; i++ {
		db.Store(workload.KeyBytes(uint64(i)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exist(workload.KeyBytes(uint64(i % 10000))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsyncBatchStore(b *testing.B) {
	db := newBenchDB(b, rhik.Options{Capacity: 1 << 30})
	val := workload.ValuePayload(0, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	i := 0
	for i < b.N {
		var batch rhik.Batch
		for j := 0; j < 256 && i < b.N; j++ {
			batch.Store(workload.KeyBytes(uint64(i%40000)), val)
			i++
		}
		if res := db.Apply(&batch, 0); res.Failed() > 0 {
			b.Fatal("batch failures")
		}
	}
}

// --- ablations: design choices called out in DESIGN.md §7 ---

func BenchmarkAblationHopRange(b *testing.B) {
	for _, hop := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("H=%d", hop), func(b *testing.B) {
			db := newBenchDB(b, rhik.Options{HopRange: hop})
			val := workload.ValuePayload(0, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Store(workload.KeyBytes(uint64(i)), val); err != nil && err != rhik.ErrCollision {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationSignatureWidth(b *testing.B) {
	for _, bits := range []int{64, 128} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			db := newBenchDB(b, rhik.Options{SignatureBits: bits})
			val := workload.ValuePayload(0, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Store(workload.KeyBytes(uint64(i)), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationCacheBudget(b *testing.B) {
	for _, budget := range []int64{256 << 10, 10 << 20} {
		b.Run(fmt.Sprintf("cache=%dKiB", budget>>10), func(b *testing.B) {
			db := newBenchDB(b, rhik.Options{CacheBudget: budget})
			val := workload.ValuePayload(0, 64)
			const fill = 30000
			for i := 0; i < fill; i++ {
				if err := db.Store(workload.KeyBytes(uint64(i)), val); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Retrieve(workload.KeyBytes(uint64(i % fill))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationIndexScheme(b *testing.B) {
	for _, scheme := range []struct {
		name string
		s    rhik.IndexScheme
	}{{"rhik", rhik.RHIK}, {"mlhash", rhik.MultiLevel}, {"lsm", rhik.LSM}} {
		b.Run(scheme.name, func(b *testing.B) {
			db := newBenchDB(b, rhik.Options{Index: scheme.s, CacheBudget: 512 << 10})
			val := workload.ValuePayload(0, 64)
			const fill = 20000
			for i := 0; i < fill; i++ {
				if err := db.Store(workload.KeyBytes(uint64(i)), val); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Retrieve(workload.KeyBytes(uint64(i % fill))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
