package rhik

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/shard"
)

// The backup torture extends the WAL kill -9 rig to the online BACKUP
// path: a child process serves a WAL-backed store over loopback while
// the torture workers keep mutating it; the parent starts a BACKUP
// stream, stalls it mid-flight, SIGKILLs the child, and then proves two
// things at once — the partial stream is *detectably* truncated (the
// client returns ErrBackupTruncated, never a silently short archive),
// and the restarted store still replays every acknowledged write
// (fsync=always: the open snapshot and the half-sent stream cost no
// durability).

const (
	// backupBlobKeys x backupBlobSize of bulk payload guarantees the
	// backup stream vastly exceeds loopback socket + client buffering, so
	// a stalled reader reliably wedges the server mid-stream.
	backupBlobKeys = 1024
	backupBlobSize = 8 << 10
)

func backupBlobKey(i int) []byte {
	return []byte(fmt.Sprintf("blob-%06d", i))
}

func backupBlobValue(i int) []byte {
	v := make([]byte, backupBlobSize)
	for j := range v {
		v[j] = byte(i + j*7)
	}
	return v
}

// backupTortureOpen opens the raw shard set with the same WAL topology
// tortureOpen uses, so the oracle/recovery machinery carries over.
func backupTortureOpen(dir string) (*shard.Set, error) {
	return OpenSet(Options{
		Capacity: 256 << 20,
		Shards:   tortureShards,
		WAL: WALOptions{
			Dir:         filepath.Join(dir, "wal"),
			Fsync:       "always",
			SegmentSize: 256 << 10,
		},
	})
}

// TestBackupTortureChild is the child body: recover, preload the blob
// payload, serve on a loopback port, and keep the torture workers
// writing until the parent SIGKILLs the process mid-BACKUP.
func TestBackupTortureChild(t *testing.T) {
	dir := os.Getenv("RHIK_BKTORTURE_DIR")
	if dir == "" {
		t.Skip("backup torture child entry point; driven by TestBackupTortureKill9")
	}
	set, err := backupTortureOpen(dir)
	if err != nil {
		fmt.Printf("child: open: %v\n", err)
		os.Exit(3)
	}
	// Preload the bulk payload once; later lives find it recovered.
	for i := 0; i < backupBlobKeys; i++ {
		k := backupBlobKey(i)
		if ok, err := set.Exist(k); err != nil {
			fmt.Printf("child: exist blob %d: %v\n", i, err)
			os.Exit(3)
		} else if ok {
			continue
		}
		if err := set.Store(k, backupBlobValue(i)); err != nil {
			fmt.Printf("child: preload blob %d: %v\n", i, err)
			os.Exit(3)
		}
	}
	srv := server.New(set, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("child: listen: %v\n", err)
		os.Exit(3)
	}
	go srv.Serve(ln)
	go func() {
		time.Sleep(30 * time.Second)
		os.Exit(0) // watchdog: parent died without killing us
	}()
	fmt.Printf("ready %s\n", ln.Addr())

	acked := make(chan struct{}, 1024)
	for w := 0; w < tortureWorkers; w++ {
		go tortureWorker(set, dir, w, acked)
	}
	n := 0
	for range acked {
		if n++; n%100 == 0 {
			fmt.Println("progress")
		}
	}
}

// runBackupTortureCycle starts the serving child, opens a BACKUP stream
// against it, stalls the stream after the first entry arrives, SIGKILLs
// the child mid-flight, and asserts the client detects the truncation.
func runBackupTortureCycle(t *testing.T, dir string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestBackupTortureChild$")
	cmd.Env = append(os.Environ(), "RHIK_BKTORTURE_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		go io.Copy(io.Discard, stdout)
		cmd.Wait()
	}()

	sc := bufio.NewScanner(stdout)
	deadline := time.After(60 * time.Second)
	got := make(chan string, 16)
	go func() {
		for sc.Scan() {
			got <- sc.Text()
		}
		close(got)
	}()
	addr := ""
	stage := 0 // 0 = want ready, 1 = want progress
wait:
	for {
		select {
		case line, ok := <-got:
			if !ok {
				t.Fatalf("child exited before being killed (stage %d)", stage)
			}
			if stage == 0 && strings.HasPrefix(line, "ready ") {
				addr = strings.TrimPrefix(line, "ready ")
				stage = 1
			} else if stage == 1 && line == "progress" {
				break wait
			} else if strings.HasPrefix(line, "child:") {
				t.Fatalf("child error: %s", line)
			}
		case <-deadline:
			t.Fatalf("child made no progress (stage %d)", stage)
		}
	}

	c, err := client.Dial(client.Options{Addr: addr})
	if err != nil {
		t.Fatalf("dial child: %v", err)
	}
	defer c.Close()

	// Start the backup on its own goroutine; the callback parks after the
	// first entry so the stream wedges with most of the payload unsent,
	// then the kill lands mid-stream by construction.
	firstEntry := make(chan struct{})
	killed := make(chan struct{})
	done := make(chan error, 1)
	var once sync.Once
	go func() {
		res, err := c.Backup(0, func(k, v []byte) error {
			once.Do(func() { close(firstEntry) })
			<-killed
			return nil
		})
		if err == nil {
			err = fmt.Errorf("backup of a killed server completed cleanly: %+v", res)
		}
		done <- err
	}()
	select {
	case <-firstEntry:
	case <-time.After(30 * time.Second):
		t.Fatal("backup stream delivered no entry within 30s")
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	close(killed)
	select {
	case err := <-done:
		if !errors.Is(err, client.ErrBackupTruncated) {
			t.Fatalf("killed-mid-stream backup error = %v, want ErrBackupTruncated", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("backup did not detect the dead server within 30s")
	}
}

// TestBackupTortureKill9 is the acceptance torture for online backup:
// >= 20 kill/recover cycles, each one SIGKILLing the server mid-BACKUP,
// asserting the partial stream is detectably truncated and the restarted
// store replays with zero lost acknowledged writes.
func TestBackupTortureKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test spawns child processes; skipped in -short")
	}
	dir := t.TempDir()
	cycles := 20
	for c := 0; c < cycles; c++ {
		runBackupTortureCycle(t, dir)

		// Recover in-process: every acked worker op and every preloaded
		// blob must come back exactly, snapshot or no snapshot in flight.
		set, err := backupTortureOpen(dir)
		if err != nil {
			t.Fatalf("cycle %d: recovery failed: %v", c, err)
		}
		for w := 0; w < tortureWorkers; w++ {
			st := readOracle(t, dir, w)
			for i, want := range st.present {
				if i == st.pendingIdx {
					continue // re-intended op; both states legal
				}
				ok, err := set.Exist(tortureKey(w, i))
				if err != nil {
					t.Fatalf("cycle %d worker %d key %d: %v", c, w, i, err)
				}
				if ok != want {
					t.Fatalf("cycle %d worker %d key %d: present=%v want %v (acked op lost)", c, w, i, ok, want)
				}
				if want {
					v, err := set.Retrieve(tortureKey(w, i))
					if err != nil || !bytes.Equal(v, tortureValue(w, i)) {
						t.Fatalf("cycle %d worker %d key %d: bad value %q (%v)", c, w, i, v, err)
					}
				}
			}
		}
		for i := 0; i < backupBlobKeys; i += 37 {
			v, err := set.Retrieve(backupBlobKey(i))
			if err != nil || !bytes.Equal(v, backupBlobValue(i)) {
				t.Fatalf("cycle %d: blob %d lost or corrupt (%v)", c, i, err)
			}
		}
		if err := set.Checkpoint(); err != nil {
			t.Fatalf("cycle %d: checkpoint: %v", c, err)
		}
		if err := set.Close(); err != nil {
			t.Fatalf("cycle %d: close: %v", c, err)
		}
	}
}
