package rhik

import "time"

// Stats is the public observability snapshot of an open device.
type Stats struct {
	// Command counts.
	Stores, Retrieves, Deletes, Exists int64
	// Host payload traffic.
	BytesWritten, BytesRead int64

	// Index state.
	IndexRecords     int64
	IndexScheme      string
	DirectoryEntries int
	Resizes          int
	ResizeHaltTotal  time.Duration
	CollisionAborts  int64
	CacheHits        int64
	CacheMisses      int64

	// Flash activity.
	FlashReads, FlashPrograms, FlashErases int64
	GCRuns                                 int64
	Checkpoints                            int64
	Recoveries                             int64

	// Latency percentiles over simulated time.
	StoreP50, StoreP99       time.Duration
	RetrieveP50, RetrieveP99 time.Duration
}

// ResizeEvent is one RHIK re-configuration, exposed for Fig. 7-style
// analysis.
type ResizeEvent struct {
	KeysBefore  int64
	NewCapacity int64
	Took        time.Duration
}

// Stats returns a snapshot of device counters and percentiles.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	ds := db.dev.Stats()
	is := db.dev.IndexStats()
	fs := db.dev.FlashStats()
	return Stats{
		Stores:    ds.Stores,
		Retrieves: ds.Retrieves,
		Deletes:   ds.Deletes,
		Exists:    ds.Exists,

		BytesWritten: ds.BytesWritten,
		BytesRead:    ds.BytesRead,

		IndexRecords:     is.Records,
		IndexScheme:      db.dev.Index().Name(),
		DirectoryEntries: is.DirEntries,
		Resizes:          is.Resizes,
		ResizeHaltTotal:  time.Duration(int64(ds.ResizeHalt)),
		CollisionAborts:  ds.CollisionAborts,
		CacheHits:        is.Cache.Hits,
		CacheMisses:      is.Cache.Misses,

		FlashReads:    fs.Reads,
		FlashPrograms: fs.Programs,
		FlashErases:   fs.Erases,
		GCRuns:        ds.GCRuns,
		Checkpoints:   ds.Checkpoints,
		Recoveries:    ds.Recoveries,

		StoreP50:    time.Duration(db.dev.StoreLatency().Percentile(50)),
		StoreP99:    time.Duration(db.dev.StoreLatency().Percentile(99)),
		RetrieveP50: time.Duration(db.dev.RetrieveLatency().Percentile(50)),
		RetrieveP99: time.Duration(db.dev.RetrieveLatency().Percentile(99)),
	}
}

// ResizeEvents returns RHIK's re-configuration history (empty for the
// multi-level index).
func (db *DB) ResizeEvents() []ResizeEvent {
	db.mu.Lock()
	defer db.mu.Unlock()
	evs := db.dev.ResizeEvents()
	out := make([]ResizeEvent, len(evs))
	for i, e := range evs {
		out[i] = ResizeEvent{
			KeysBefore:  e.KeysBefore,
			NewCapacity: e.NewCapacity,
			Took:        time.Duration(int64(e.Took)),
		}
	}
	return out
}
