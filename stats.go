package rhik

import "time"

// Stats is the public observability snapshot of an open device,
// aggregated across shards: command counts, traffic, index state, and
// flash activity sum over shards; Recoveries counts device-wide power
// cycles (every shard restarts together); latency percentiles come from
// exact merges of the per-shard histograms.
type Stats struct {
	// Command counts.
	Stores, Retrieves, Deletes, Exists int64
	// Host payload traffic.
	BytesWritten, BytesRead int64

	// Index state.
	IndexRecords     int64
	IndexScheme      string
	DirectoryEntries int
	Resizes          int
	ResizeHaltTotal  time.Duration
	CollisionAborts  int64
	CacheHits        int64
	CacheMisses      int64
	AdmissionRejects int64

	// Hot-value tier (zero unless Options.ValueCacheBudget > 0).
	ValueCacheHits   int64
	ValueCacheMisses int64
	// PrefetchHits counts scan record reads served from an
	// already-staged page (Options.ScanPrefetch).
	PrefetchHits int64

	// Flash activity.
	FlashReads, FlashPrograms, FlashErases int64
	GCRuns                                 int64
	Checkpoints                            int64
	Recoveries                             int64

	// Latency percentiles over simulated time.
	StoreP50, StoreP99       time.Duration
	RetrieveP50, RetrieveP99 time.Duration

	// FlashReadsPerGet is the mean number of metadata flash reads a
	// retrieve's index lookup performed — the figure RHIK bounds at one
	// (zero when the lookup answered from DRAM).
	FlashReadsPerGet float64
}

// ResizeEvent is one RHIK re-configuration, exposed for Fig. 7-style
// analysis.
type ResizeEvent struct {
	KeysBefore  int64
	NewCapacity int64
	Took        time.Duration
}

// Stats returns a snapshot of device counters and percentiles merged
// across every shard.
func (db *DB) Stats() Stats {
	agg := db.set.Stats()
	return Stats{
		Stores:    agg.Dev.Stores,
		Retrieves: agg.Dev.Retrieves,
		Deletes:   agg.Dev.Deletes,
		Exists:    agg.Dev.Exists,

		BytesWritten: agg.Dev.BytesWritten,
		BytesRead:    agg.Dev.BytesRead,

		IndexRecords:     agg.Index.Records,
		IndexScheme:      agg.Scheme,
		DirectoryEntries: agg.Index.DirEntries,
		Resizes:          agg.Index.Resizes,
		ResizeHaltTotal:  time.Duration(int64(agg.Dev.ResizeHalt)),
		CollisionAborts:  agg.Dev.CollisionAborts,
		CacheHits:        agg.Index.Cache.Hits,
		CacheMisses:      agg.Index.Cache.Misses,
		AdmissionRejects: agg.Index.Cache.AdmissionRejects,
		ValueCacheHits:   agg.Dev.ValueCacheHits,
		ValueCacheMisses: agg.Dev.ValueCacheMisses,
		PrefetchHits:     agg.Dev.PrefetchHits,

		FlashReads:    agg.Flash.Reads,
		FlashPrograms: agg.Flash.Programs,
		FlashErases:   agg.Flash.Erases,
		GCRuns:        agg.Dev.GCRuns,
		Checkpoints:   agg.Dev.Checkpoints,
		Recoveries:    agg.Dev.Recoveries,

		StoreP50:    time.Duration(agg.StoreLat.Percentile(50)),
		StoreP99:    time.Duration(agg.StoreLat.Percentile(99)),
		RetrieveP50: time.Duration(agg.RetrieveLat.Percentile(50)),
		RetrieveP99: time.Duration(agg.RetrieveLat.Percentile(99)),

		FlashReadsPerGet: agg.MetaPerGet.Mean(),
	}
}

// ResetOpStats clears per-op latency histograms and cache counters on
// every shard, so an experiment can separate a preload phase from the
// measured run. Cumulative totals (command counts, flash activity,
// resizes) are unaffected.
func (db *DB) ResetOpStats() {
	db.set.ResetOpStats()
}

// ResizeEvents returns RHIK's re-configuration history, concatenated in
// shard order (empty for the multi-level index).
func (db *DB) ResizeEvents() []ResizeEvent {
	evs := db.set.ResizeEvents()
	out := make([]ResizeEvent, len(evs))
	for i, e := range evs {
		out[i] = ResizeEvent{
			KeysBefore:  e.KeysBefore,
			NewCapacity: e.NewCapacity,
			Took:        time.Duration(int64(e.Took)),
		}
	}
	return out
}
