package rhik_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	rhik "repro"
	"repro/internal/workload"
)

// TestShardedRoundTrip drives every public op against a multi-shard DB
// and checks that routing is transparent: values come back from whatever
// shard owns them and aggregated stats count every command.
func TestShardedRoundTrip(t *testing.T) {
	db := openDB(t, rhik.Options{Shards: 4})
	if db.Shards() != 4 {
		t.Fatalf("Shards() = %d", db.Shards())
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := db.Store([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, err := db.Retrieve([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("retrieve %d: (%q, %v)", i, v, err)
		}
	}
	for i := 0; i < n; i += 2 {
		if err := db.Delete([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		ok, err := db.Exist([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil {
			t.Fatalf("exist %d: %v", i, err)
		}
		if want := i%2 == 1; ok != want {
			t.Fatalf("exist %d = %v, want %v", i, ok, want)
		}
	}
	s := db.Stats()
	if s.Stores != n || s.Retrieves != n || s.Deletes != n/2 || s.Exists != n {
		t.Fatalf("aggregated stats = %+v", s)
	}
	if s.IndexRecords != n/2 {
		t.Fatalf("records = %d, want %d", s.IndexRecords, n/2)
	}
	if db.Elapsed() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

// TestShardedIterateMerges checks the cross-shard iterator merge:
// prefix-sharing keys scatter over shards (routing uses high signature
// bits, the prefix only pins the low 32), and Iterate must return the
// union, sorted, with no duplicates.
func TestShardedIterateMerges(t *testing.T) {
	db := openDB(t, rhik.Options{Shards: 4, IteratorPrefixLen: 4})
	const n = 60
	for i := 0; i < n; i++ {
		if err := db.Store([]byte(fmt.Sprintf("usr:%04d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := db.Store([]byte(fmt.Sprintf("img:%04d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := db.Iterate([]byte("usr:"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("got %d entries, want %d", len(entries), n)
	}
	for i, e := range entries {
		if want := fmt.Sprintf("usr:%04d", i); string(e.Key) != want {
			t.Fatalf("entry %d = %q, want %q (merge not sorted?)", i, e.Key, want)
		}
	}
}

// TestShardedBatchJoinsInOrder checks that Apply fans sub-batches out to
// shards and stitches results back in submission order.
func TestShardedBatchJoinsInOrder(t *testing.T) {
	db := openDB(t, rhik.Options{Shards: 4})
	var w rhik.Batch
	const n = 200
	for i := 0; i < n; i++ {
		w.Store([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	if res := db.Apply(&w, 0); res.Failed() != 0 {
		t.Fatalf("writes failed: %d", res.Failed())
	}
	var r rhik.Batch
	for i := 0; i < n; i++ {
		r.Retrieve([]byte(fmt.Sprintf("k%03d", i)))
	}
	r.Delete([]byte("missing"))
	res := db.Apply(&r, 0)
	if res.Elapsed <= 0 {
		t.Fatal("batch elapsed not positive")
	}
	for i := 0; i < n; i++ {
		if string(res.Values[i]) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("value %d = %q: results joined out of order", i, res.Values[i])
		}
	}
	if !errors.Is(res.Errs[n], rhik.ErrNotFound) || res.Failed() != 1 {
		t.Fatalf("missing-key result: %v", res.Errs[n])
	}
}

// TestShardedBadShardCount rejects non-power-of-two shard counts.
func TestShardedBadShardCount(t *testing.T) {
	for _, n := range []int{-1, 3, 6, 12} {
		if _, err := rhik.Open(rhik.Options{Capacity: 64 << 20, Shards: n}); err == nil {
			t.Fatalf("Shards=%d accepted", n)
		}
	}
}

// TestShardedRestartRecoversAllShards power-cycles a multi-shard DB and
// verifies every shard recovers its keys; Recoveries counts the
// device-wide event once, not once per shard.
func TestShardedRestartRecoversAllShards(t *testing.T) {
	db := openDB(t, rhik.Options{Shards: 4})
	const n = 300
	for i := 0; i < n; i++ {
		if err := db.Store([]byte(fmt.Sprintf("key-%08d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Restart(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := db.Retrieve([]byte(fmt.Sprintf("key-%08d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %d after restart: (%q, %v)", i, v, err)
		}
	}
	if got := db.Stats().Recoveries; got != 1 {
		t.Fatalf("recoveries = %d, want 1 device-wide power cycle", got)
	}
}

// TestStressConcurrentMixedOps is the -race stress harness: 8 goroutines
// hammer one shared DB with mixed Store/Retrieve/Delete/Exist over
// disjoint key ranges, each tracking a private oracle. It asserts no
// lost updates (every readback matches the goroutine's last write) and
// that aggregated Stats() totals equal the sum of per-goroutine
// successful ops — a command executed on a shard is counted exactly
// once, never dropped or double-counted under concurrency.
func TestStressConcurrentMixedOps(t *testing.T) {
	db := openDB(t, rhik.Options{Shards: 4})
	const (
		goroutines = 8
		steps      = 600
		keyspace   = 150
	)
	type counts struct{ stores, retrieves, deletes, exists int64 }
	perG := make([]counts, goroutines)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			base := uint64(g) << 40 // disjoint key range per goroutine
			model := make(map[uint64][]byte)
			c := &perG[g]
			for i := 0; i < steps; i++ {
				id := base + uint64(rng.Intn(keyspace))
				key := workload.KeyBytes(id)
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // store / update
					val := workload.ValuePayload(uint64(i)|base, 16+rng.Intn(200))
					err := db.Store(key, val)
					if errors.Is(err, rhik.ErrCollision) {
						continue
					}
					if err != nil {
						errc <- fmt.Errorf("g%d store: %w", g, err)
						return
					}
					model[id] = val
					c.stores++
				case 4, 5, 6: // retrieve + lost-update check
					want, present := model[id]
					got, err := db.Retrieve(key)
					if present {
						if err != nil || !bytes.Equal(got, want) {
							errc <- fmt.Errorf("g%d lost update on %d: %v", g, id, err)
							return
						}
						c.retrieves++
					} else if !errors.Is(err, rhik.ErrNotFound) {
						errc <- fmt.Errorf("g%d phantom key %d: %v", g, id, err)
						return
					}
				case 7, 8: // exist
					ok, err := db.Exist(key)
					if err != nil {
						errc <- fmt.Errorf("g%d exist: %w", g, err)
						return
					}
					if _, present := model[id]; ok != present {
						errc <- fmt.Errorf("g%d exist=%v model=%v for %d", g, ok, present, id)
						return
					}
					c.exists++
				case 9: // delete
					err := db.Delete(key)
					if _, present := model[id]; present {
						if err != nil {
							errc <- fmt.Errorf("g%d delete: %w", g, err)
							return
						}
						delete(model, id)
						c.deletes++
					} else if !errors.Is(err, rhik.ErrNotFound) {
						errc <- fmt.Errorf("g%d delete of absent key: %v", g, err)
						return
					}
				}
			}
			// Final sweep: every surviving key must hold its last value.
			for id, want := range model {
				got, err := db.Retrieve(workload.KeyBytes(id))
				if err != nil || !bytes.Equal(got, want) {
					errc <- fmt.Errorf("g%d final sweep lost %d: %v", g, id, err)
					return
				}
				c.retrieves++
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	var want counts
	for _, c := range perG {
		want.stores += c.stores
		want.retrieves += c.retrieves
		want.deletes += c.deletes
		want.exists += c.exists
	}
	s := db.Stats()
	if s.Stores != want.stores || s.Retrieves != want.retrieves ||
		s.Deletes != want.deletes || s.Exists != want.exists {
		t.Fatalf("stats totals diverge from per-goroutine sums:\n got: stores=%d retrieves=%d deletes=%d exists=%d\nwant: %+v",
			s.Stores, s.Retrieves, s.Deletes, s.Exists, want)
	}
	if s.IndexRecords < 0 || s.IndexRecords > goroutines*keyspace {
		t.Fatalf("records = %d out of range", s.IndexRecords)
	}
}
